package workloads

import (
	"testing"

	"spice/internal/core"
	"spice/internal/rt"
	"spice/internal/sim"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("benchmarks = %d, want 4 (Table 2)", len(all))
	}
	names := []string{"ks", "otter", "181.mcf", "458.sjeng"}
	for i, want := range names {
		if all[i].Name != want {
			t.Errorf("benchmark %d = %s, want %s", i, all[i].Name, want)
		}
	}
	if ByName("otter") == nil || ByName("nope") != nil {
		t.Error("ByName broken")
	}
}

// TestKernelsTransformable checks every Table 2 kernel parses, analyzes
// and transforms with the expected speculated live-in width.
func TestKernelsTransformable(t *testing.T) {
	widths := map[string]int{"ks": 1, "otter": 1, "181.mcf": 1, "458.sjeng": 8}
	for _, b := range All() {
		prog := b.Program(b.Defaults)
		tr, err := core.Transform(prog, core.Options{
			Fn: "main", LoopHeader: b.LoopHeader, Threads: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if tr.SVAWidth != widths[b.Name] {
			t.Errorf("%s: SVA width = %d, want %d (the paper notes sjeng has 8 live-ins)",
				b.Name, tr.SVAWidth, widths[b.Name])
		}
		if len(tr.Workers) != 3 {
			t.Errorf("%s: workers = %d", b.Name, len(tr.Workers))
		}
	}
}

func TestSjengReductionIsScoreOnly(t *testing.T) {
	b := Sjeng()
	prog := b.Program(b.Defaults)
	a, err := core.Analyze(prog, core.Options{Fn: "main", LoopHeader: b.LoopHeader, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reds) != 1 || a.Fn.RegName(a.Reds[0].Reg) != "score" {
		t.Errorf("sjeng reductions = %v, want only the score sum", a.Reds)
	}
}

func TestInitBuildsConsistentWorlds(t *testing.T) {
	for _, b := range All() {
		m, err := rt.New(sim.DefaultConfig(), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := b.Defaults
		p.Size = 50
		inst := b.Init(m, p)
		if len(inst.Args) == 0 {
			t.Fatalf("%s: no args", b.Name)
		}
		if inst.Checksum == nil || len(inst.Checksum()) == 0 {
			t.Fatalf("%s: no checksum", b.Name)
		}
		// Mutator hook must be registered and runnable repeatedly.
		if m.Hooks[HookMutate] == nil {
			t.Fatalf("%s: no mutator hook", b.Name)
		}
		for i := 0; i < 5; i++ {
			m.Hooks[HookMutate](m)
		}
	}
}

func TestMutatorsPreserveListIntegrity(t *testing.T) {
	for _, b := range All() {
		m, _ := rt.New(sim.DefaultConfig(), 1, 1)
		p := b.Defaults
		p.Size = 64
		inst := b.Init(m, p)
		head := inst.Args[0]
		nextOff := int64(1)
		if b.Name == "181.mcf" {
			nextOff = 0
		}
		for i := 0; i < 20; i++ {
			m.Hooks[HookMutate](m)
			// Walk the list: must be finite and nil-terminated.
			count := 0
			for c := m.Mem.MustLoad(head); c != 0; c = m.Mem.MustLoad(c + nextOff) {
				count++
				if count > 100000 {
					t.Fatalf("%s: cycle after mutation %d", b.Name, i)
				}
			}
			if count == 0 && b.Name != "otter" {
				t.Errorf("%s: empty list after mutation %d", b.Name, i)
			}
		}
	}
}

func TestSuiteProgramGeneration(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		prog := SuiteProgram(n)
		if prog.Func("main") == nil {
			t.Fatalf("n=%d: no main", n)
		}
		headers := SuiteLoopHeaders(n)
		if len(headers) != n {
			t.Fatalf("headers = %v", headers)
		}
		for _, h := range headers {
			if prog.Func("main").FindBlock(h) == nil {
				t.Errorf("n=%d: missing block %s", n, h)
			}
		}
	}
}

func TestSuitesCoverPaperBenchmarks(t *testing.T) {
	if len(Fig8a()) != 19 {
		t.Errorf("Fig8a has %d benchmarks, want 19", len(Fig8a()))
	}
	if len(Fig8b()) != 19 {
		t.Errorf("Fig8b has %d benchmarks, want 19", len(Fig8b()))
	}
	for _, s := range append(Fig8a(), Fig8b()...) {
		if len(s.Disturb) == 0 {
			t.Errorf("%s has no loops", s.Name)
		}
		for _, d := range s.Disturb {
			if d < 0 || d > 1 {
				t.Errorf("%s: disturb %f out of range", s.Name, d)
			}
		}
	}
}

func TestSuiteInitAndMutate(t *testing.T) {
	m, _ := rt.New(sim.DefaultConfig(), 1, 1)
	bench := SuiteBench{Name: "x", Disturb: []float64{0.0, 1.0}}
	args := SuiteInit(m, bench, 30, 5, 9)
	if len(args) != 3 { // ninv + 2 heads
		t.Fatalf("args = %v", args)
	}
	// Collect membership before and after a disturb-all mutation.
	members := func(head int64) map[int64]bool {
		out := map[int64]bool{}
		for c := m.Mem.MustLoad(head); c != 0; c = m.Mem.MustLoad(c + 1) {
			out[c] = true
			if len(out) > 1000 {
				t.Fatal("cycle")
			}
		}
		return out
	}
	before0, before1 := members(args[1]), members(args[2])
	m.Hooks[HookMutate](m)
	after0, after1 := members(args[1]), members(args[2])
	overlap := func(a, b map[int64]bool) float64 {
		n := 0
		for v := range a {
			if b[v] {
				n++
			}
		}
		return float64(n) / float64(len(a))
	}
	if o := overlap(before0, after0); o < 0.9 {
		t.Errorf("disturb=0 loop churned too much: overlap %.2f", o)
	}
	if o := overlap(before1, after1); o > 0.5 {
		t.Errorf("disturb=1 loop churned too little: overlap %.2f", o)
	}
}
