package circuit

import (
	"context"
	"fmt"
	"math"

	"spice"
)

// Newton iteration controls. Convergence is the standard SPICE
// two-term test on the update magnitude: |ΔV_i| ≤ vntol + reltol·|V_i|.
const (
	maxNewton = 50
	vntol     = 1e-5
	reltol    = 1e-3
)

// Waveform is a transient result: one row of node voltages (nodes
// 1..N) per accepted timestep.
type Waveform struct {
	Step float64
	V    [][]float64
}

// Steps reports the number of accepted timesteps.
func (w *Waveform) Steps() int { return len(w.V) }

// At returns node's voltage (1-based) after timestep step (0-based).
func (w *Waveform) At(step, node int) float64 { return w.V[step][node-1] }

// Equal is the differential oracle's comparison: bit-exact equality
// of every sample, via Float64bits so ±0 and NaN patterns can't alias.
func (w *Waveform) Equal(o *Waveform) bool {
	if o == nil || w.Step != o.Step || len(w.V) != len(o.V) {
		return false
	}
	for i := range w.V {
		if len(w.V[i]) != len(o.V[i]) {
			return false
		}
		for j := range w.V[i] {
			if math.Float64bits(w.V[i][j]) != math.Float64bits(o.V[i][j]) {
				return false
			}
		}
	}
	return true
}

// sweepFn runs one device-evaluation sweep at the given node voltages
// (volts[0] is ground) and leaves the fixed-point Jacobian/residual
// stamps in acc (length N²+N, pre-zeroed by the caller).
type sweepFn func(volts []float64, acc []int64) error

// transient is the shared Newton/backward-Euler driver. Everything
// here is plain scalar float code operating on the int64 stamp totals
// a sweep produced — identical for the sequential reference and every
// parallel configuration, which is what makes the differential oracle
// a bit-exact test of the speculative sweep alone.
func (c *Circuit) transient(steps int, sweep sweepFn) (*Waveform, error) {
	n := c.N
	c.resetState()
	volts := make([]float64, n+1)
	acc := make([]int64, n*n+n)
	jac := make([]float64, n*n)
	rhs := make([]float64, n)
	piv := make([]int, n)
	wf := &Waveform{Step: c.Step, V: make([][]float64, 0, steps)}

	for s := 0; s < steps; s++ {
		c.updateSources(float64(s+1) * c.Step)
		converged := false
		for it := 0; it < maxNewton; it++ {
			for k := range acc {
				acc[k] = 0
			}
			if err := sweep(volts, acc); err != nil {
				return nil, err
			}
			for k := 0; k < n*n; k++ {
				jac[k] = float64(acc[k]) * fromFix
			}
			for k := 0; k < n; k++ {
				rhs[k] = -float64(acc[n*n+k]) * fromFix
			}
			if err := solveDense(n, jac, rhs, piv); err != nil {
				return nil, fmt.Errorf("circuit %s: step %d newton %d: %w", c.Name, s, it, err)
			}
			done := true
			for i := 1; i <= n; i++ {
				dv := rhs[i-1]
				volts[i] += dv
				if math.Abs(dv) > vntol+reltol*math.Abs(volts[i]) {
					done = false
				}
			}
			c.updateDiodeStates(volts)
			if done {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("circuit %s: newton failed to converge at step %d (t=%g)", c.Name, s, float64(s+1)*c.Step)
		}
		c.updateCapStates(volts)
		row := make([]float64, n)
		copy(row, volts[1:])
		wf.V = append(wf.V, row)
	}
	return wf, nil
}

// solveDense solves the n×n system a·x = b in place by Gaussian
// elimination with partial pivoting; the solution replaces b.
func solveDense(n int, a []float64, b []float64, piv []int) error {
	for col := 0; col < n; col++ {
		p, best := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > best {
				p, best = r, v
			}
		}
		if best == 0 {
			return fmt.Errorf("singular matrix at column %d", col)
		}
		piv[col] = p
		if p != col {
			for k := col; k < n; k++ {
				a[col*n+k], a[p*n+k] = a[p*n+k], a[col*n+k]
			}
			b[col], b[p] = b[p], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		x := b[r]
		for k := r + 1; k < n; k++ {
			x -= a[r*n+k] * b[k]
		}
		b[r] = x / a[r*n+r]
	}
	return nil
}

// RunSequential runs the transient with the plain in-process reference
// sweep — no runtime, no speculation. This is the oracle side of the
// differential test.
func (c *Circuit) RunSequential(steps int) (*Waveform, error) {
	return c.transient(steps, func(volts []float64, acc []int64) error {
		c.sweepSeq(volts, acc)
		return nil
	})
}

// RunParallel runs the same transient with every device-evaluation
// sweep dispatched through spice.Pool at the given width: node
// voltages are published into the cell store before each sweep
// (float bits in cells 0..N), the stamp reduction cells are zeroed,
// the netlist chunk-executes speculatively, and the folded totals are
// read back for the shared solve. Returns the waveform and the
// runtime's cumulative speculation stats for the whole run.
func (c *Circuit) RunParallel(ctx context.Context, width int, adaptive bool, steps int) (*Waveform, spice.Stats, error) {
	pool, err := spice.NewPool(c.loop(), spice.PoolConfig{
		Config: spice.Config{
			Threads: width,
			Options: spice.Options{Adaptive: adaptive},
		},
	})
	if err != nil {
		return nil, spice.Stats{}, err
	}
	defer pool.Close()
	sess, err := pool.SessionWidth(width)
	if err != nil {
		return nil, spice.Stats{}, err
	}
	defer sess.Close()
	sess.BindCells(c.cells)

	base := 1 + c.N
	nred := c.N*c.N + c.N
	wf, err := c.transient(steps, func(volts []float64, acc []int64) error {
		for i := 0; i <= c.N; i++ {
			c.cells.Set(i, int64(math.Float64bits(volts[i])))
		}
		for r := 0; r < nred; r++ {
			c.cells.Set(base+r, 0)
		}
		if _, err := sess.Run(ctx, c.head); err != nil {
			return err
		}
		for r := 0; r < nred; r++ {
			acc[r] = c.cells.At(base + r)
		}
		return nil
	})
	if err != nil {
		return nil, spice.Stats{}, err
	}
	return wf, sess.Stats(), nil
}
