package circuit

import (
	"context"
	"math"
	"testing"

	"spice"
)

// TestTransientOracle is the differential oracle the tentpole hangs
// on: for each netlist, the parallel transient must reproduce the
// pure-sequential reference waveform bit for bit across widths ×
// adaptive on/off. The same Circuit value is reused for every run, so
// this also proves resetState makes transients rerunnable.
func TestTransientOracle(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Circuit
		steps int
	}{
		{"rcladder", func() *Circuit { return RCLadder(6, 24) }, 40},
		{"rectifier", func() *Circuit { return Rectifier(48) }, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			ref, err := c.RunSequential(tc.steps)
			if err != nil {
				t.Fatalf("sequential reference: %v", err)
			}
			if ref.Steps() != tc.steps {
				t.Fatalf("reference produced %d steps, want %d", ref.Steps(), tc.steps)
			}
			for _, width := range []int{1, 2, 8} {
				for _, adaptive := range []bool{false, true} {
					wf, st, err := c.RunParallel(context.Background(), width, adaptive, tc.steps)
					if err != nil {
						t.Fatalf("width=%d adaptive=%v: %v", width, adaptive, err)
					}
					if !ref.Equal(wf) {
						t.Fatalf("width=%d adaptive=%v: waveform diverged from sequential reference", width, adaptive)
					}
					if st.Invocations == 0 {
						t.Fatalf("width=%d adaptive=%v: no invocations recorded", width, adaptive)
					}
				}
			}
			// And sequential again on the reused circuit: still identical.
			again, err := c.RunSequential(tc.steps)
			if err != nil {
				t.Fatalf("sequential rerun: %v", err)
			}
			if !ref.Equal(again) {
				t.Fatal("sequential rerun diverged: device state not fully reset")
			}
		})
	}
}

// TestRCLadderPhysics sanity-checks the solver against circuit theory:
// a 1 A step into a resistively loaded ladder must charge monotonically
// toward the DC solution V(1) = sections·1 Ω (all capacitors open).
func TestRCLadderPhysics(t *testing.T) {
	sections := 4
	c := RCLadder(sections, 8)
	wf, err := c.RunSequential(240)
	if err != nil {
		t.Fatal(err)
	}
	last := wf.At(wf.Steps()-1, 1)
	dc := float64(sections)
	if last < 0.9*dc || last > 1.01*dc {
		t.Fatalf("V(1) settled at %g, want ≈ %g", last, dc)
	}
	if first := wf.At(0, 1); first <= 0 || first >= last {
		t.Fatalf("V(1) not charging: first=%g last=%g", first, last)
	}
}

// TestRectifierPhysics checks rectification: the output node must end
// up positively charged with bounded ripple even while the drive
// swings both ways, and must never exceed the drive's open-circuit
// peak.
func TestRectifierPhysics(t *testing.T) {
	c := Rectifier(16)
	wf, err := c.RunSequential(120) // 12 s = three full 0.25 Hz periods
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for s := wf.Steps() / 2; s < wf.Steps(); s++ {
		v := wf.At(s, 3)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if min < 0.1 {
		t.Fatalf("DC output collapsed: min V(3)=%g over the settled half", min)
	}
	if max > 1.5 {
		t.Fatalf("DC output above drive peak: max V(3)=%g", max)
	}
	if max-min > 0.5 {
		t.Fatalf("ripple too large: %g", max-min)
	}
}

// TestWaveformEqual pins down the oracle comparison itself.
func TestWaveformEqual(t *testing.T) {
	a := &Waveform{Step: 0.1, V: [][]float64{{1, 2}, {3, 4}}}
	b := &Waveform{Step: 0.1, V: [][]float64{{1, 2}, {3, 4}}}
	if !a.Equal(b) {
		t.Fatal("identical waveforms compared unequal")
	}
	b.V[1][1] = math.Nextafter(4, 5)
	if a.Equal(b) {
		t.Fatal("one-ulp difference compared equal")
	}
	if a.Equal(nil) || a.Equal(&Waveform{Step: 0.2, V: a.V}) {
		t.Fatal("nil/mismatched-step waveforms compared equal")
	}
}

// TestParallelCancellation: a cancelled context must surface as an
// error from the transient, not hang or corrupt state.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RCLadder(4, 8).RunParallel(ctx, 2, false, 10); err == nil {
		t.Fatal("cancelled transient returned nil error")
	}
}

// BenchmarkCircuitSweep measures the steady-state device-evaluation
// sweep (the per-Newton-iteration hot path) through the runtime at
// fixed voltages, and gates it at 0 allocs/op like every other
// steady-state bench.
func BenchmarkCircuitSweep(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(benchLabel(threads), func(b *testing.B) {
			c := RCLadder(8, 64)
			pool, err := spice.NewPool(c.loop(), spice.PoolConfig{
				Config: spice.Config{Threads: threads},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			sess, err := pool.SessionWidth(threads)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			sess.BindCells(c.cells)
			for i := 1; i <= c.N; i++ {
				c.cells.Set(i, int64(math.Float64bits(0.5*float64(i))))
			}
			base := 1 + c.N
			nred := c.N*c.N + c.N
			ctx := context.Background()
			for i := 0; i < 2; i++ { // warm the views and queues
				if _, err := sess.Run(ctx, c.head); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < nred; r++ {
					c.cells.Set(base+r, 0)
				}
				if _, err := sess.Run(ctx, c.head); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchLabel(threads int) string {
	return "t" + string(rune('0'+threads))
}
