// Package circuit is a small self-contained MNA (modified nodal
// analysis) transient simulator whose per-Newton-iteration device
// sweep runs through spice.Pool. It is the runtime's first *real*
// program: the netlist is a pointer-linked device list walked in
// order, node voltages are read through CellView.Load, and every
// matrix/RHS stamp is accumulated into a ReduceSum reduction cell —
// conflict-free by construction — while device-internal state
// (capacitor charge, diode linearization point) rides in the loop
// state and churns between timesteps with the topology held stable.
//
// The simulator works in Newton residual form. Each device reports
// its linearized branch conductance g and branch current i at the
// current voltage iterate; the sweep accumulates the Jacobian
// J[a][a]+=g, J[a][b]-=g, J[b][a]-=g, J[b][b]+=g and the residual
// f[a]+=i, f[b]-=i, and the driver solves J·ΔV = −f by dense
// Gaussian elimination with partial pivoting, iterating until the
// update is below tolerance. Capacitors use backward-Euler companion
// models (g = C/h, i = g·(v − v_prev)); diodes are Newton-linearized
// around a pnjlim-limited operating point.
//
// Bit-identical parallelism: float addition is not associative, so
// chunk privatization would change accumulation grouping. All stamps
// are therefore fixed-point int64 (fixScale fractional bits) folded
// with ReduceSum — int64 addition is associative and commutative even
// under wraparound, so the folded totals are bit-identical regardless
// of chunking, width, or adaptive throttling. Everything downstream
// of the accumulators (solve, convergence, state updates) is shared
// scalar code, so parallel transients reproduce the sequential
// reference bit for bit.
package circuit

import (
	"math"

	"spice"
)

// Device kinds. Exported so the serving-registry projection
// (internal/workloads/native) can mirror netlist topology.
const (
	KindResistor uint8 = iota
	KindCapacitor
	KindDiode
	KindSource
)

// Diode model constants: saturation current, thermal voltage, and the
// critical voltage above which Newton updates are log-damped (the
// classic SPICE pnjlim limiter).
const (
	diodeIs   = 1e-9
	thermalVt = 0.025852
	// gmin is the SPICE-style leakage conductance across every
	// junction: with all bridge diodes cut off the AC nodes would
	// otherwise float and the Jacobian would go singular. 1 µS is
	// comfortably above the fixed-point resolution (2⁻³⁰ ≈ 0.93 nS)
	// and comfortably below every circuit conductance here.
	gmin = 1e-6
)

var diodeVcrit = thermalVt * math.Log(thermalVt/(math.Sqrt2*diodeIs))

// Fixed-point stamp encoding: fixScale fractional bits, saturated at
// ±fixLimit before scaling so an absurd intermediate stays a
// deterministic rail instead of undefined float→int conversion.
const (
	fixScale = 1 << 30
	fixLimit = float64(int64(1) << 32)
)

func toFix(x float64) int64 {
	if x > fixLimit {
		x = fixLimit
	} else if x < -fixLimit {
		x = -fixLimit
	}
	return int64(math.Round(x * fixScale))
}

const fromFix = 1.0 / float64(fixScale)

// Device is one netlist element on the branch a→b (node 0 is ground).
// state is the device-internal value carried across sweeps: capacitor
// branch voltage at the previous timestep, diode linearization point,
// source current for the current timestep. The r* fields are the
// device's precomputed reduction indices (−1 = ground row/column,
// never stamped).
type Device struct {
	Kind uint8
	A, B int
	Val  float64 // R in ohms, C in farads, diode Is scale, source amps
	Freq float64 // sources only: sine frequency in Hz; 0 = DC

	next  *Device
	state float64
	geq   float64 // resistor 1/R, capacitor C/h; fixed per circuit

	rAA, rAB, rBA, rBB int32
	rA, rB             int32
}

// eval computes the device's Newton-linearized branch conductance and
// branch current at node voltages (va, vb), in fixed point. This is
// the one evaluation routine shared verbatim by the sequential
// reference sweep and the speculative parallel sweep.
func (d *Device) eval(va, vb float64) (g, i int64) {
	v := va - vb
	switch d.Kind {
	case KindResistor:
		return toFix(d.geq), toFix(d.geq * v)
	case KindCapacitor:
		// Backward-Euler companion: i = C/h · (v − v_prev).
		return toFix(d.geq), toFix(d.geq * (v - d.state))
	case KindDiode:
		vl := pnjlim(v, d.state)
		e := math.Exp(vl / thermalVt)
		gd := diodeIs/thermalVt*e + gmin
		id := diodeIs*(e-1) + gd*(v-vl) + gmin*vl
		return toFix(gd), toFix(id)
	default: // KindSource: fixed current this timestep, no conductance.
		return 0, toFix(d.state)
	}
}

// pnjlim damps a junction-voltage Newton step the way Berkeley SPICE
// does: once past vcrit, exponentially growing updates are pulled back
// onto a logarithmic trajectory so exp() cannot overflow and Newton
// cannot oscillate across the knee.
func pnjlim(vnew, vold float64) float64 {
	if vnew <= diodeVcrit || math.Abs(vnew-vold) <= 2*thermalVt {
		return vnew
	}
	if vold > 0 {
		arg := 1 + (vnew-vold)/thermalVt
		if arg > 0 {
			return vold + thermalVt*math.Log(arg)
		}
		return diodeVcrit
	}
	return thermalVt * math.Log(vnew/thermalVt)
}

// Circuit is a built netlist plus its speculation plumbing. Cell
// layout: cells[0..N] hold node voltages as math.Float64bits (cell 0
// is ground and stays zero), followed by N² Jacobian stamp cells and
// N residual stamp cells, every one a ReduceSum reduction.
type Circuit struct {
	Name string
	N    int     // unknown (non-ground) node count
	Step float64 // timestep h in seconds

	head    *Device
	devices []*Device
	cells   *spice.Cells
	reds    []spice.Reduction
}

// Devices returns the netlist in traversal order (for projections and
// inspection; mutating topology through it is not supported).
func (c *Circuit) Devices() []*Device { return c.devices }

// DeviceCount reports the netlist length.
func (c *Circuit) DeviceCount() int { return len(c.devices) }

func (c *Circuit) add(d *Device) { c.devices = append(c.devices, d) }

// finish links the device chain, assigns each device its stamp
// reduction indices, and sizes the cell store.
func (c *Circuit) finish() *Circuit {
	n := c.N
	for i, d := range c.devices {
		if i+1 < len(c.devices) {
			d.next = c.devices[i+1]
		}
		switch d.Kind {
		case KindResistor:
			d.geq = 1 / d.Val
		case KindCapacitor:
			d.geq = d.Val / c.Step
		}
		d.rAA = c.matIdx(d.A, d.A)
		d.rAB = c.matIdx(d.A, d.B)
		d.rBA = c.matIdx(d.B, d.A)
		d.rBB = c.matIdx(d.B, d.B)
		d.rA = c.rhsIdx(d.A)
		d.rB = c.rhsIdx(d.B)
	}
	c.head = c.devices[0]
	nred := n*n + n
	c.cells = spice.NewCells(1 + n + nred)
	c.reds = make([]spice.Reduction, nred)
	for r := range c.reds {
		c.reds[r] = spice.Reduction{Cell: 1 + n + r, Kind: spice.ReduceSum}
	}
	return c
}

// matIdx maps (row i, col j) in 1-based node numbering onto the flat
// stamp-accumulator index; ground rows and columns are not stamped.
func (c *Circuit) matIdx(i, j int) int32 {
	if i == 0 || j == 0 {
		return -1
	}
	return int32((i-1)*c.N + (j - 1))
}

func (c *Circuit) rhsIdx(i int) int32 {
	if i == 0 {
		return -1
	}
	return int32(c.N*c.N + (i - 1))
}

// loop is the speculative device sweep: chase the netlist pointer
// chain, Load the two node voltages, evaluate the device, and fold
// its Jacobian/residual stamps into the ReduceSum cells. The loop
// accumulator counts evaluated devices (a cheap liveness check).
func (c *Circuit) loop() spice.Loop[*Device, int64] {
	return spice.Loop[*Device, int64]{
		Done: func(d *Device) bool { return d == nil },
		Next: func(d *Device) *Device { return d.next },
		SpecBody: func(d *Device, acc int64, v *spice.CellView) int64 {
			va := math.Float64frombits(uint64(v.Load(d.A)))
			vb := math.Float64frombits(uint64(v.Load(d.B)))
			g, i := d.eval(va, vb)
			if d.rAA >= 0 {
				v.Reduce(int(d.rAA), g)
			}
			if d.rBB >= 0 {
				v.Reduce(int(d.rBB), g)
			}
			if d.rAB >= 0 {
				v.Reduce(int(d.rAB), -g)
			}
			if d.rBA >= 0 {
				v.Reduce(int(d.rBA), -g)
			}
			if d.rA >= 0 {
				v.Reduce(int(d.rA), i)
			}
			if d.rB >= 0 {
				v.Reduce(int(d.rB), -i)
			}
			return acc + 1
		},
		Init:       func() int64 { return 0 },
		Merge:      func(a, b int64) int64 { return a + b },
		Reductions: c.reds,
	}
}

// sweepSeq is the pure-sequential reference sweep: same traversal,
// same eval, same stamp indices, accumulated into a plain slice with
// the identical int64 arithmetic the reduction fold performs.
func (c *Circuit) sweepSeq(volts []float64, acc []int64) {
	for d := c.head; d != nil; d = d.next {
		g, i := d.eval(volts[d.A], volts[d.B])
		if d.rAA >= 0 {
			acc[d.rAA] += g
		}
		if d.rBB >= 0 {
			acc[d.rBB] += g
		}
		if d.rAB >= 0 {
			acc[d.rAB] -= g
		}
		if d.rBA >= 0 {
			acc[d.rBA] -= g
		}
		if d.rA >= 0 {
			acc[d.rA] += i
		}
		if d.rB >= 0 {
			acc[d.rB] -= i
		}
	}
}

// resetState rewinds all device-internal state so a circuit can be
// re-run from t=0; construction leaves everything zeroed already.
func (c *Circuit) resetState() {
	for _, d := range c.devices {
		d.state = 0
	}
}

// updateSources sets each source's drive current for timestep time t.
func (c *Circuit) updateSources(t float64) {
	for _, d := range c.devices {
		if d.Kind != KindSource {
			continue
		}
		if d.Freq > 0 {
			d.state = d.Val * math.Sin(2*math.Pi*d.Freq*t)
		} else {
			d.state = d.Val
		}
	}
}

// updateDiodeStates advances every diode's linearization point to the
// pnjlim-limited voltage at the new iterate (once per Newton
// iteration, between sweeps — the runtime's legal mutation window).
func (c *Circuit) updateDiodeStates(volts []float64) {
	for _, d := range c.devices {
		if d.Kind == KindDiode {
			d.state = pnjlim(volts[d.A]-volts[d.B], d.state)
		}
	}
}

// updateCapStates latches every capacitor's branch voltage at the end
// of an accepted timestep (the backward-Euler companion history).
func (c *Circuit) updateCapStates(volts []float64) {
	for _, d := range c.devices {
		if d.Kind == KindCapacitor {
			d.state = volts[d.A] - volts[d.B]
		}
	}
}

// RCLadder builds an RC ladder: a 1 A step current source drives node
// 1, each section is a series resistor bundle into a shunt capacitor
// bundle, and the last node is resistively loaded to ground. Every
// section's total R is 1 Ω and total C is 1 F split across `branches`
// parallel devices, so the waveform is independent of branches while
// the netlist length scales with it. Normalized units; h = 0.25 s.
func RCLadder(sections, branches int) *Circuit {
	if sections < 1 {
		sections = 1
	}
	if branches < 1 {
		branches = 1
	}
	c := &Circuit{Name: "rcladder", N: sections, Step: 0.25}
	c.add(&Device{Kind: KindSource, A: 0, B: 1, Val: 1.0})
	for s := 1; s <= sections; s++ {
		if s > 1 {
			for b := 0; b < branches; b++ {
				c.add(&Device{Kind: KindResistor, A: s - 1, B: s, Val: float64(branches)})
			}
		}
		for b := 0; b < branches; b++ {
			c.add(&Device{Kind: KindCapacitor, A: s, B: 0, Val: 1.0 / float64(branches)})
		}
	}
	for b := 0; b < branches; b++ {
		c.add(&Device{Kind: KindResistor, A: sections, B: 0, Val: float64(branches)})
	}
	return c.finish()
}

// Rectifier builds a full-wave diode-bridge rectifier: a 0.25 Hz
// Norton sine drive across nodes 1–2 (source ∥ 1 Ω), four bridge
// diodes into node 3 (DC+) and out of ground (DC−), and an RC-loaded
// output (10 Ω ∥ 2 F). Each of the `bundles` replicas carries 1/bundles
// of the drive and filter so the waveform is bundle-count-invariant
// while the netlist length scales. h = 0.1 s.
func Rectifier(bundles int) *Circuit {
	if bundles < 1 {
		bundles = 1
	}
	c := &Circuit{Name: "rectifier", N: 3, Step: 0.1}
	fb := float64(bundles)
	for b := 0; b < bundles; b++ {
		c.add(&Device{Kind: KindSource, A: 2, B: 1, Val: 1.5 / fb, Freq: 0.25})
		c.add(&Device{Kind: KindResistor, A: 1, B: 2, Val: 1.0 * fb})
		c.add(&Device{Kind: KindDiode, A: 1, B: 3})
		c.add(&Device{Kind: KindDiode, A: 2, B: 3})
		c.add(&Device{Kind: KindDiode, A: 0, B: 1})
		c.add(&Device{Kind: KindDiode, A: 0, B: 2})
		c.add(&Device{Kind: KindResistor, A: 3, B: 0, Val: 10.0 * fb})
		c.add(&Device{Kind: KindCapacitor, A: 3, B: 0, Val: 2.0 / fb})
	}
	return c.finish()
}
